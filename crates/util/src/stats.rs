//! Summary statistics and classification metrics.
//!
//! Used by the benchmark harness (latency summaries) and by the deep-learning
//! evaluation code (confusion matrices, accuracy, per-class F1).

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Compute the `q`-quantile (0 ≤ q ≤ 1) of a sample by linear interpolation.
/// Returns `None` for an empty sample. The input is copied and sorted.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
    }
}

/// Arithmetic mean of a slice (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// A square confusion matrix for `k`-class classification.
///
/// Rows are true classes, columns predicted classes.
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// A `k`-class matrix with all counts zero.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            counts: vec![0; k * k],
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.k
    }

    /// Record one observation. Panics if either label is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        assert!(truth < self.k && predicted < self.k, "label out of range");
        self.counts[truth * self.k + predicted] += 1;
    }

    /// Count for (truth, predicted).
    pub fn get(&self, truth: usize, predicted: usize) -> u64 {
        self.counts[truth * self.k + predicted]
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.k).map(|i| self.get(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Precision of a class: TP / (TP + FP). 0 if the class is never predicted.
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.get(class, class);
        let predicted: u64 = (0..self.k).map(|t| self.get(t, class)).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall of a class: TP / (TP + FN). 0 if the class never occurs.
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.get(class, class);
        let actual: u64 = (0..self.k).map(|p| self.get(class, p)).sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// Per-class F1 score.
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Macro-averaged F1 over all classes.
    pub fn macro_f1(&self) -> f64 {
        if self.k == 0 {
            return 0.0;
        }
        (0..self.k).map(|c| self.f1(c)).sum::<f64>() / self.k as f64
    }

    /// Cohen's kappa — chance-corrected agreement, the standard metric for
    /// land-cover map accuracy assessment.
    pub fn kappa(&self) -> f64 {
        let total = self.total() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let po = self.accuracy();
        let pe: f64 = (0..self.k)
            .map(|c| {
                let row: u64 = (0..self.k).map(|p| self.get(c, p)).sum();
                let col: u64 = (0..self.k).map(|t| self.get(t, c)).sum();
                (row as f64 / total) * (col as f64 / total)
            })
            .sum();
        if (1.0 - pe).abs() < f64::EPSILON {
            0.0
        } else {
            (po - pe) / (1.0 - pe)
        }
    }

    /// Merge another matrix of the same shape into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.k, other.k, "class-count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_matches_closed_form() {
        let mut acc = Accumulator::new();
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for &x in &data {
            acc.push(x);
        }
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        assert!((acc.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
    }

    #[test]
    fn empty_accumulator_is_sane() {
        let acc = Accumulator::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
    }

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(quantile(&v, 0.5), Some(3.0));
        assert_eq!(quantile(&v, 0.25), Some(2.0));
        assert_eq!(quantile(&[], 0.5), None);
        // Interpolation between points.
        assert_eq!(quantile(&[0.0, 10.0], 0.5), Some(5.0));
    }

    #[test]
    fn confusion_perfect_classifier() {
        let mut cm = ConfusionMatrix::new(3);
        for c in 0..3 {
            for _ in 0..10 {
                cm.record(c, c);
            }
        }
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
        assert!((cm.kappa() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confusion_known_values() {
        // Binary matrix: TP=40 FN=10 / FP=5 TN=45
        let mut cm = ConfusionMatrix::new(2);
        for _ in 0..40 {
            cm.record(1, 1);
        }
        for _ in 0..10 {
            cm.record(1, 0);
        }
        for _ in 0..5 {
            cm.record(0, 1);
        }
        for _ in 0..45 {
            cm.record(0, 0);
        }
        assert!((cm.accuracy() - 0.85).abs() < 1e-12);
        assert!((cm.precision(1) - 40.0 / 45.0).abs() < 1e-12);
        assert!((cm.recall(1) - 0.8).abs() < 1e-12);
        let f1 = 2.0 * (40.0 / 45.0) * 0.8 / ((40.0 / 45.0) + 0.8);
        assert!((cm.f1(1) - f1).abs() < 1e-12);
    }

    #[test]
    fn confusion_degenerate_classes() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        // Class 2 never appears anywhere.
        assert_eq!(cm.precision(2), 0.0);
        assert_eq!(cm.recall(2), 0.0);
        assert_eq!(cm.f1(2), 0.0);
    }

    #[test]
    fn confusion_merge() {
        let mut a = ConfusionMatrix::new(2);
        a.record(0, 0);
        let mut b = ConfusionMatrix::new(2);
        b.record(1, 0);
        b.record(1, 1);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.get(1, 0), 1);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn confusion_rejects_bad_label() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }
}
