//! Virtual-time primitives shared by the discrete-event simulators.
//!
//! Simulated components never read the wall clock: the cluster simulator and
//! the HopsFS load generator advance a [`SimTime`] explicitly. Keeping the
//! type here (rather than in `ee-cluster`) lets `ee-hopsfs` and the
//! application pipelines talk about virtual time without depending on the
//! whole cluster simulator.
//!
//! We also model *calendar* time for the Earth-observation side: scenes have
//! sensing dates, crop calendars are driven by day-of-year, and the water
//! balance runs daily steps. [`Date`] is a minimal proleptic-Gregorian date.

/// A point in simulated time, in seconds since simulation start.
///
/// Stored as integer nanoseconds to keep event ordering exact (floating
/// point would make event order depend on accumulated rounding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation origin.
    pub const ZERO: SimTime = SimTime(0);

    /// From whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// From seconds (fractional allowed; must be non-negative and finite).
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid SimTime seconds: {secs}");
        Self((secs * 1e9).round() as u64)
    }

    /// As fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Advance by a duration.
    pub fn advance(self, d: SimDuration) -> Self {
        Self(self.0 + d.0)
    }

    /// Time elapsed since `earlier` (saturating at zero).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

/// A span of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Self(ns)
    }

    /// From seconds (fractional allowed; must be non-negative and finite).
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "invalid SimDuration seconds: {secs}"
        );
        Self((secs * 1e9).round() as u64)
    }

    /// From milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1e3)
    }

    /// From microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us / 1e6)
    }

    /// As fractional seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As fractional milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: Self) -> Self {
        SimDuration(self.0 + rhs.0)
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> Self {
        SimDuration(self.0 * rhs)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

/// A calendar date (proleptic Gregorian), used for scene sensing times and
/// the daily water-balance loop. Only the operations the pipelines need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    year: i32,
    /// Day of year, 1-based (1..=365/366).
    ordinal: u16,
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_year(year: i32) -> u16 {
    if is_leap(year) {
        366
    } else {
        365
    }
}

const MONTH_LENGTHS: [u16; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

impl Date {
    /// Build from year/month/day. Returns `None` for invalid dates.
    pub fn new(year: i32, month: u32, day: u32) -> Option<Self> {
        if !(1..=12).contains(&month) {
            return None;
        }
        let mut len = MONTH_LENGTHS[(month - 1) as usize];
        if month == 2 && is_leap(year) {
            len = 29;
        }
        if day == 0 || day as u16 > len {
            return None;
        }
        let mut ordinal = day as u16;
        for (m, &len) in MONTH_LENGTHS.iter().enumerate().take((month - 1) as usize) {
            ordinal += len;
            if m == 1 && is_leap(year) {
                ordinal += 1;
            }
        }
        Some(Self { year, ordinal })
    }

    /// Build from a 1-based day-of-year. Returns `None` if out of range.
    pub fn from_ordinal(year: i32, ordinal: u16) -> Option<Self> {
        if ordinal == 0 || ordinal > days_in_year(year) {
            None
        } else {
            Some(Self { year, ordinal })
        }
    }

    /// Year component.
    pub fn year(self) -> i32 {
        self.year
    }

    /// 1-based day of year.
    pub fn ordinal(self) -> u16 {
        self.ordinal
    }

    /// (month, day) components.
    pub fn month_day(self) -> (u32, u32) {
        let mut remaining = self.ordinal;
        for (m, &len0) in MONTH_LENGTHS.iter().enumerate() {
            let mut len = len0;
            if m == 1 && is_leap(self.year) {
                len += 1;
            }
            if remaining <= len {
                return (m as u32 + 1, remaining as u32);
            }
            remaining -= len;
        }
        unreachable!("ordinal validated at construction")
    }

    /// The next calendar day.
    pub fn succ(self) -> Self {
        if self.ordinal < days_in_year(self.year) {
            Self {
                year: self.year,
                ordinal: self.ordinal + 1,
            }
        } else {
            Self {
                year: self.year + 1,
                ordinal: 1,
            }
        }
    }

    /// Add `n` days.
    pub fn plus_days(self, n: u32) -> Self {
        let mut d = self;
        for _ in 0..n {
            d = d.succ();
        }
        d
    }

    /// Signed number of days from `other` to `self`.
    pub fn days_since(self, other: Date) -> i64 {
        fn abs_days(d: Date) -> i64 {
            let mut total: i64 = 0;
            // Sum whole years from year 0 (fine for the ranges we use).
            if d.year >= 0 {
                for y in 0..d.year {
                    total += days_in_year(y) as i64;
                }
            } else {
                for y in d.year..0 {
                    total -= days_in_year(y) as i64;
                }
            }
            total + d.ordinal as i64
        }
        abs_days(self) - abs_days(other)
    }

    /// ISO-8601 `YYYY-MM-DD` string.
    pub fn iso(self) -> String {
        let (m, d) = self.month_day();
        format!("{:04}-{:02}-{:02}", self.year, m, d)
    }
}

impl std::fmt::Display for Date {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.iso())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_ordering_and_math() {
        let t0 = SimTime::ZERO;
        let t1 = t0.advance(SimDuration::from_millis(1.5));
        assert!(t1 > t0);
        assert_eq!(t1.since(t0).as_millis(), 1.5);
        assert_eq!(t0.since(t1), SimDuration::ZERO, "saturates");
        assert_eq!(SimTime::from_secs(2.0).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_micros(250.0) * 4;
        assert_eq!(d.as_millis(), 1.0);
        let total: SimDuration = (0..10).map(|_| SimDuration::from_secs(0.1)).sum();
        assert!((total.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid SimTime")]
    fn simtime_rejects_negative() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[(2017, 1, 1), (2017, 12, 31), (2016, 2, 29), (2019, 7, 15)] {
            let date = Date::new(y, m, d).unwrap();
            assert_eq!(date.month_day(), (m, d));
            let again = Date::from_ordinal(y, date.ordinal()).unwrap();
            assert_eq!(again, date);
        }
    }

    #[test]
    fn date_rejects_invalid() {
        assert!(Date::new(2017, 2, 29).is_none(), "2017 not a leap year");
        assert!(Date::new(2016, 2, 29).is_some());
        assert!(Date::new(2017, 13, 1).is_none());
        assert!(Date::new(2017, 0, 1).is_none());
        assert!(Date::new(2017, 4, 31).is_none());
        assert!(Date::from_ordinal(2017, 366).is_none());
        assert!(Date::from_ordinal(2016, 366).is_some());
    }

    #[test]
    fn date_succession_across_year() {
        let d = Date::new(2017, 12, 31).unwrap();
        let next = d.succ();
        assert_eq!(next, Date::new(2018, 1, 1).unwrap());
        assert_eq!(next.days_since(d), 1);
    }

    #[test]
    fn days_since_known_spans() {
        let a = Date::new(2017, 1, 1).unwrap();
        let b = Date::new(2018, 1, 1).unwrap();
        assert_eq!(b.days_since(a), 365);
        let c = Date::new(2016, 1, 1).unwrap();
        assert_eq!(a.days_since(c), 366, "2016 is a leap year");
        assert_eq!(c.days_since(a), -366);
    }

    #[test]
    fn plus_days_matches_days_since() {
        let a = Date::new(2017, 6, 20).unwrap();
        let b = a.plus_days(200);
        assert_eq!(b.days_since(a), 200);
    }

    #[test]
    fn iso_format() {
        assert_eq!(Date::new(2017, 3, 5).unwrap().iso(), "2017-03-05");
    }
}
