//! The Food Security pipeline (application A1) end to end:
//!
//! synthetic watershed → a season of Sentinel-2 scenes → temporal crop
//! classification → field-boundary extraction → PROMET-lite full-year
//! water balance at 10 m → irrigation advisory as linked data.
//!
//! ```text
//! cargo run --release --example food_security
//! ```

use extremeearth::datasets::landscape::LandscapeConfig;
use extremeearth::datasets::optics::{simulate_season, OpticsConfig};
use extremeearth::datasets::Landscape;
use extremeearth::food::boundaries::{extract_fields, parcel_recovery};
use extremeearth::food::cropmap::{classify_landscape, parcel_majority};
use extremeearth::food::linked::{parcel_features, publish, FARM};
use extremeearth::food::promet::{demand_by_crop, run as promet, PrometConfig};
use extremeearth::util::timeline::Date;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The watershed.
    let world = Landscape::generate(LandscapeConfig {
        size: 64,
        parcels_per_side: 8,
        ..LandscapeConfig::default()
    })?;
    println!("watershed: {} parcels", world.parcels.len());

    // A season of acquisitions (every ~45 days, cloud-free for the demo).
    let dates: Vec<Date> = [60u16, 105, 150, 195, 240, 285]
        .iter()
        .map(|&d| Date::from_ordinal(2017, d).expect("valid ordinal"))
        .collect();
    let stack = simulate_season(
        &world,
        &dates,
        OpticsConfig {
            cloud_fraction: 0.0,
            noise_std: 0.01,
        },
        7,
    )?;

    // Challenge C1: temporal crop classification.
    let (crop_map, cm) = classify_landscape(&world, &stack, 42)?;
    println!(
        "crop map: accuracy {:.1}% | kappa {:.3}",
        cm.accuracy() * 100.0,
        cm.kappa()
    );
    let fields = parcel_majority(&world, &crop_map);
    let correct = fields
        .iter()
        .filter(|(pid, class)| {
            world
                .parcels
                .iter()
                .any(|p| p.id == *pid && p.class == *class)
        })
        .count();
    println!(
        "field-level crop types: {}/{} parcels correct",
        correct,
        fields.len()
    );

    // Field boundaries from the predicted map.
    let (labels, extracted) = extract_fields(&crop_map, 6);
    let recovery = parcel_recovery(&world, &labels, &extracted, 0.6);
    println!(
        "boundaries: {} fields extracted, {:.0}% of true parcels recovered",
        extracted.len(),
        recovery * 100.0
    );

    // PROMET-lite (ref [10]): full-year water balance at 10 m, with
    // crop-specific Kc taken from the *predicted* map.
    let output = promet(&world, &crop_map, PrometConfig::default())?;
    println!(
        "water balance: runoff {:.0} mm | snowfall {:.0} mm | year-end basin water {:.2}",
        output.runoff_mm,
        output.snowfall_mm,
        output.daily_basin_water.last().copied().unwrap_or(0.0)
    );
    for (crop, demand) in demand_by_crop(&world, &output) {
        println!("  irrigation demand {:>10}: {demand:.1} mm", crop.name());
    }

    // Publish as linked data and run the farmer's query.
    let fc = parcel_features(&world, &crop_map, &output)?;
    let store = publish(&fc)?;
    let sol = extremeearth::rdf::exec::query(
        &store,
        &format!(
            "PREFIX farm: <{FARM}> SELECT ?p ?d WHERE {{ \
             ?p a farm:Parcel ; farm:irrigationDemandMm ?d . FILTER(?d > 10) }} \
             ORDER BY DESC(?d) LIMIT 5"
        ),
    )?;
    println!("top parcels needing irrigation (> 10 mm): {}", sol.len());
    for row in &sol.rows {
        if let (Some(p), Some(d)) = (&row[0], &row[1]) {
            println!("  {} -> {}", p.ntriples(), d.ntriples());
        }
    }

    // Sextant: render the crop map and the peak-stress water map.
    use extremeearth::sextant::palette::LAND_COVER;
    use extremeearth::sextant::MapBuilder;
    let labels: Vec<&str> = extremeearth::datasets::LandClass::ALL
        .iter()
        .map(|c| c.name())
        .collect();
    let crop_svg = MapBuilder::new()
        .categorical("crop map", crop_map.clone(), &LAND_COVER, &labels)
        .render()?;
    std::fs::write("target/crop_map.svg", &crop_svg)?;
    let water_svg = MapBuilder::new()
        .continuous("water availability (day 235)", output.summer_water_availability.clone())
        .render()?;
    std::fs::write("target/water_availability.svg", &water_svg)?;
    println!("maps written: target/crop_map.svg, target/water_availability.svg");
    Ok(())
}
