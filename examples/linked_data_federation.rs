//! Big linked geospatial data (Challenge C3) end to end:
//!
//! map tabular + vector sources to RDF with the GeoTriples-style mapping,
//! interlink two datasets spatially with meta-blocking, then federate
//! SPARQL over the distributed sources Semagrow-style.
//!
//! ```text
//! cargo run --release --example linked_data_federation
//! ```

use extremeearth::federation::{federated_query, Endpoint, FederationCatalog, Mode};
use extremeearth::geo::{Point, Polygon};
use extremeearth::geotriples::csv::parse_csv;
use extremeearth::geotriples::features::{Feature, FeatureCollection, PropValue};
use extremeearth::geotriples::mapping::{feature_mapping, ObjectMap, TermType, TriplesMap};
use extremeearth::interlink::discover::{discover, DiscoverConfig};
use extremeearth::interlink::entity::{LinkRule, SpatialEntity, SpatialRelation};
use extremeearth::rdf::store::IndexMode;
use extremeearth::rdf::TripleStore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- GeoTriples: a CSV crop register becomes RDF. -------------------
    let register = parse_csv(
        "id,crop,yield\n\
         f1,wheat,4.2\n\
         f2,maize,6.1\n\
         f3,wheat,3.9\n",
    )?;
    let mapping = TriplesMap {
        subject_template: "http://farm.example/field/{id}".into(),
        class: Some("http://farm.example/Field".into()),
        predicate_objects: vec![
            (
                "http://farm.example/crop".into(),
                ObjectMap::Reference {
                    field: "crop".into(),
                    term_type: TermType::String,
                },
            ),
            (
                "http://farm.example/yield".into(),
                ObjectMap::Reference {
                    field: "yield".into(),
                    term_type: TermType::Double,
                },
            ),
        ],
    };
    let mut crops = TripleStore::new(IndexMode::Full);
    let emitted = mapping.run_table(&register, &mut crops)?;
    println!("GeoTriples: {emitted} triples from the crop register");

    // --- GeoTriples again: a vector parcel layer with geometries. -------
    let mut parcels = FeatureCollection::new();
    for (i, (x, y)) in [(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)].iter().enumerate() {
        parcels.push(
            Feature::new(Polygon::rectangle(*x, *y, x + 8.0, y + 8.0).into())
                .with("id", PropValue::Str(format!("f{}", i + 1))),
        );
    }
    let geo_mapping = feature_mapping(
        "http://farm.example/field/",
        "id",
        "http://farm.example/Field",
        &[],
    );
    let mut geo_store = TripleStore::new(IndexMode::Full);
    geo_mapping.run_features(&parcels, &mut geo_store)?;
    geo_store.build_spatial_index();
    println!("GeoTriples: {} geometry triples from the parcel layer", geo_store.len());

    // --- Interlinking: which weather stations sit inside which parcel? --
    let stations: Vec<SpatialEntity> = [(4.0, 4.0), (14.0, 2.0), (40.0, 40.0)]
        .iter()
        .enumerate()
        .map(|(i, (x, y))| SpatialEntity::new(100 + i as u64, Point::new(*x, *y).into()))
        .collect();
    let parcel_entities: Vec<SpatialEntity> = parcels
        .features
        .iter()
        .enumerate()
        .map(|(i, f)| SpatialEntity::new(i as u64, f.geometry.clone()))
        .collect();
    let links = discover(
        &stations,
        &parcel_entities,
        LinkRule::spatial(SpatialRelation::Within),
        DiscoverConfig::default(),
    )?;
    println!(
        "interlinking: {} within-links found with {} comparisons (vs {} exhaustive)",
        links.links.len(),
        links.comparisons,
        links.exhaustive_comparisons
    );

    // --- Federation: query crops + geometries across both sources. ------
    let endpoints = vec![
        Endpoint::new("crop-register", crops),
        Endpoint::new("parcel-geometries", geo_store),
    ];
    let catalog = FederationCatalog::build(&endpoints);
    let query = "PREFIX farm: <http://farm.example/> \
                 SELECT ?f ?g WHERE { ?f farm:crop \"wheat\" . ?f geo:asWKT ?g }";
    for mode in [Mode::Naive, Mode::Optimized] {
        let report = federated_query(&endpoints, &catalog, query, mode)?;
        println!(
            "federation {:?}: {} rows, {} requests, {} triples moved",
            mode,
            report.rows.len(),
            report.total_requests,
            report.triples_transferred
        );
    }
    Ok(())
}
