//! The Polar service (application A2) end to end:
//!
//! drifting ice world → SAR scenes → WMO stage classification → 1 km
//! products (concentration, stage, leads, ridges) → iceberg detection &
//! tracking → publication into the semantic catalogue (closing the loop
//! with the Norske Øer question) → PCDSS delivery and the NRT budget.
//!
//! ```text
//! cargo run --release --example polar_ice_service
//! ```

use extremeearth::catalogue::SemanticCatalogue;
use extremeearth::datasets::seaice::{IceWorld, IceWorldConfig};
use extremeearth::polar::icebergs::{detect, DetectorConfig, Tracker};
use extremeearth::polar::icemap::{
    mae, products_from_map, stage_confusion, truth_masks, IceMapper,
};
use extremeearth::polar::linked::{publish_ice_extents, publish_tracks};
use extremeearth::polar::pcdss::{encode_bundle, raw_bytes, transmission_secs};
use extremeearth::polar::service::{nrt_cycle, NrtConfig};
use extremeearth::util::timeline::Date;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = IceWorld::generate(IceWorldConfig {
        size: 96,
        days: 8,
        icebergs: 6,
        ..IceWorldConfig::default()
    })?;
    let day0 = Date::new(2017, 2, 10).expect("valid date");

    // Train the WMO-stage classifier on the first three days.
    let train: Vec<_> = (0..3)
        .map(|d| {
            (
                world
                    .simulate_sar(d, day0.plus_days(d as u32), 100 + d as u64)
                    .expect("sar scene"),
                world.truth(d),
            )
        })
        .collect();
    let refs: Vec<(&extremeearth::raster::Scene, &extremeearth::raster::Raster<u8>)> =
        train.iter().map(|(s, t)| (s, t)).collect();
    let mut mapper = IceMapper::train(&refs, 2500, 25, 7)?;

    // Classify a held-out day and build the 1 km product suite.
    let day = 6usize;
    let scene = world.simulate_sar(day, day0.plus_days(day as u32), 999)?;
    let predicted = mapper.predict_map(&scene)?;
    let (truth, leads, ridges) = truth_masks(&world, day);
    let cm = stage_confusion(&predicted, &truth);
    let products = products_from_map(&predicted, &leads, &ridges, 25);
    let truth_products = products_from_map(&truth, &leads, &ridges, 25);
    println!(
        "stage map (5 WMO classes): accuracy {:.1}% | 1 km concentration MAE {:.3}",
        cm.accuracy() * 100.0,
        mae(&products.concentration, &truth_products.concentration)
    );

    // Track icebergs across all days.
    let mut tracker = Tracker::new(6.0);
    for d in 0..world.config.days {
        let s = world.simulate_sar(d, day0.plus_days(d as u32), 50 + d as u64)?;
        let detections = detect(&s, DetectorConfig::default())?;
        tracker.step(d, &detections);
    }
    let confirmed = tracker.confirmed(4);
    println!(
        "icebergs: {} tracks confirmed over ≥4 days (truth: {})",
        confirmed.len(),
        world.icebergs.len()
    );

    // Publish into the semantic catalogue and ask the marquee question.
    let mut catalogue = SemanticCatalogue::new();
    publish_tracks(&mut catalogue, &confirmed, world.transform(), day0)?;
    publish_ice_extents(&mut catalogue, &world, "NorskeOerIceBarrier", day0)?;
    catalogue.finish_ingest();
    let (count, when) = catalogue.iceberg_question("NorskeOerIceBarrier", 2017)?;
    println!(
        "semantic catalogue: {count} icebergs embedded in the barrier at its \
         maximum 2017 extent ({when})"
    );

    // PCDSS delivery over a ship link.
    let bundle = encode_bundle(&products, 100_000)?;
    println!(
        "PCDSS bundle: {} B (raw {} B) → {:.0} s on a 2.4 kbps Iridium link",
        bundle.bytes(),
        raw_bytes(&products),
        transmission_secs(bundle.bytes(), 2400.0)
    );

    // Sextant: render the WMO stage map at product resolution.
    use extremeearth::sextant::palette::SEA_ICE;
    use extremeearth::sextant::MapBuilder;
    let stage_labels: Vec<&str> = extremeearth::datasets::seaice::IceClass::ALL
        .iter()
        .map(|c| c.name())
        .collect();
    let svg = MapBuilder::new()
        .categorical("WMO stage", predicted.clone(), &SEA_ICE, &stage_labels)
        .render()?;
    std::fs::write("target/ice_stage_map.svg", &svg)?;
    println!("map written: target/ice_stage_map.svg");

    // The NRT cycle on on-demand compute.
    let nrt = nrt_cycle(NrtConfig::default())?;
    println!(
        "NRT cycle: downlink {:.0} s + processing {:.0} s + delivery {:.0} s = {:.0} s ({})",
        nrt.downlink_secs,
        nrt.processing_secs,
        nrt.delivery_secs,
        nrt.total_secs(),
        if nrt.meets(3.0 * 3600.0) {
            "meets the 3 h requirement"
        } else {
            "MISSES the 3 h requirement"
        }
    );
    Ok(())
}
