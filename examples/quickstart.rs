//! Quickstart: boot the platform, generate a synthetic Copernicus world,
//! archive a scene, extract knowledge, and query it with GeoSPARQL.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use extremeearth::datasets::landscape::LandscapeConfig;
use extremeearth::datasets::optics::{simulate_s2, OpticsConfig};
use extremeearth::datasets::Landscape;
use extremeearth::platform::{Platform, PlatformConfig};
use extremeearth::util::bytes::ByteSize;
use extremeearth::util::timeline::Date;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Boot a platform: HopsFS-analogue archive + semantic catalogue +
    //    a description of the attached (simulated) cluster.
    let mut platform = Platform::new(PlatformConfig::default())?;
    println!(
        "platform up: {} nodes, {} GPUs",
        platform.cluster().num_nodes(),
        platform.cluster().total_gpus()
    );

    // 2. Generate a synthetic agricultural world (the stand-in for a real
    //    Sentinel-2 tile: 10 m pixels, field parcels, ground truth).
    let world = Landscape::generate(LandscapeConfig {
        size: 64,
        parcels_per_side: 8,
        ..LandscapeConfig::default()
    })?;
    println!(
        "world: {} parcels over {}x{} px @ 10 m",
        world.parcels.len(),
        world.config.size,
        world.config.size
    );

    // 3. Simulate two optical acquisitions and run the extraction
    //    pipeline: archive → classify → publish knowledge.
    let scenes = vec![
        simulate_s2(&world, Date::new(2017, 5, 20).expect("valid date"), OpticsConfig::default(), 1)?,
        simulate_s2(&world, Date::new(2017, 7, 4).expect("valid date"), OpticsConfig::default(), 2)?,
    ];
    let report = platform.extract_knowledge("quickstart", &world, &scenes, &world.truth)?;
    println!(
        "archived {} scenes ({}), published {} knowledge triples ({})",
        report.datasets,
        ByteSize(report.input_bytes),
        report.knowledge_triples,
        ByteSize(report.knowledge_bytes),
    );

    // 4. Ask the knowledge graph a GeoSPARQL question: which wheat parcels
    //    are in the western half of the world?
    let env = world.truth.envelope();
    let west = format!(
        "POLYGON (({x0} {y0}, {xm} {y0}, {xm} {y1}, {x0} {y1}, {x0} {y0}))",
        x0 = env.min_x,
        y0 = env.min_y,
        xm = env.center().x,
        y1 = env.max_y
    );
    let sol = platform.catalogue().query(&format!(
        "PREFIX farm: <http://extremeearth.eu/ont/farm#> \
         SELECT ?p WHERE {{ ?p a farm:Parcel ; farm:cropType \"Wheat\" ; geo:asWKT ?g . \
         FILTER(geof:sfIntersects(?g, \"{west}\"^^geo:wktLiteral)) }}"
    ))?;
    println!("wheat parcels intersecting the western half: {}", sol.len());
    Ok(())
}
