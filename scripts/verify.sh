#!/usr/bin/env bash
# Tier-1 verification: build and test the whole workspace with zero
# network access, lint with clippy as errors, then smoke-run the
# distributed-training (E4), classification (E5), kernel-throughput
# (E-k0) and serving-tier (E-s0) experiments, plus the E3 parallel-join
# sweep at 4 threads, the E-k6 top-k/BM25 sweep, the E-w7 durable
# store run, the E-c8 event-driven C10K run, the E-f9 sharded
# scatter-gather run over real shard processes, and the E-t10
# versioned time-travel run (the harness aborts non-zero if any
# parallel, top-k, ranked-search, crash-recovery, routed-vs-unsharded,
# or as-of-vs-replayed run diverges from its reference answer, or if a
# stalled streaming reader grows server memory instead of hitting
# backpressure).
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: offline release build =="
cargo build --release --offline

echo "== tier-1: offline test suite =="
cargo test -q --offline

echo "== lint: clippy (warnings are errors) =="
cargo clippy --offline --all-targets -- -D warnings

echo "== smoke: harness e4 e5 kernels e-s0 (quick scale) =="
./target/release/harness e4 e5 kernels e-s0

echo "== smoke: e-s0 streaming stage wrote its artifact =="
grep -q '"ttfb_p50_us"' BENCH_PR4.json
grep -q '"experiment": "e-s0-streaming"' BENCH_PR4.json

echo "== smoke: e-s0 query-streaming TTFB stage wrote its artifact =="
# The stage itself aborts the harness (non-zero exit above) if the
# streamed rows ever diverge from the collected rows at t in {1,4};
# reaching this point with the artifact present means identity held.
test -s BENCH_PR5.json
grep -q '"experiment": "e-s0-query-streaming"' BENCH_PR5.json
grep -q '"rows_touched_first_batch"' BENCH_PR5.json

echo "== smoke: harness e3 --threads 4 (serial-vs-parallel identity) =="
./target/release/harness e3 --threads 4

echo "== smoke: harness e-k6 (top-k heap + BM25 identity) =="
# Every sweep point asserts heap == full sort == collected API, and
# BM25 index hits == exhaustive scan hits; divergence aborts non-zero.
./target/release/harness e-k6
test -s BENCH_PR6.json
grep -q '"topk_identical": true' BENCH_PR6.json
grep -q '"bm25_identical": true' BENCH_PR6.json
grep -q '"topk_sweep"' BENCH_PR6.json

echo "== smoke: harness e-w7 --quick (durable store + crash recovery) =="
# EE_WAL_NO_SYNC=1 skips per-commit fsync so CI measures the storage
# layer, not the CI disk. The run bulk-loads a store, times snapshot
# open vs a cold N-Triples rebuild, serves queries against a concurrent
# writer, then tears the WAL mid-record and reopens — any divergence
# from the last fully-committed state panics the harness (non-zero
# exit); reaching the greps means recovery was bit-identical.
EE_WAL_NO_SYNC=1 ./target/release/harness e-w7 --quick
test -s BENCH_PR7.json
grep -q '"recovery_identical": true' BENCH_PR7.json
grep -q '"bulk_load_triples_per_sec"' BENCH_PR7.json
grep -q '"with_writer_p99_us"' BENCH_PR7.json

echo "== smoke: harness e-c8 --quick (event-driven C10K serve tier) =="
# Open-loop keep-alive fleets against the poll-driven event server plus
# the thread-pool baseline; the in-bench stalled-reader check panics
# (non-zero exit) if the server buffers a stream instead of applying
# backpressure.
./target/release/harness e-c8 --quick
test -s BENCH_PR8.json
grep -q 'p99' BENCH_PR8.json
grep -q '"bytes_per_conn"' BENCH_PR8.json

echo "== smoke: harness e-f9 --quick (sharded scatter-gather router) =="
# Launches real ee-serve shard + router processes on localhost. Every
# routed answer (COUNT bytes and canonical row sets) is checked against
# a single unsharded reference process, per-shard slices must partition
# the dataset, and the slow-shard stage asserts hedged requests keep
# admitted p99 under the per-shard deadline — any violation panics the
# harness (non-zero exit).
./target/release/harness e-f9 --quick --shards 2
test -s BENCH_PR9.json
grep -q '"sharded_identical": true' BENCH_PR9.json
grep -q '"hedged_total"' BENCH_PR9.json

echo "== smoke: harness e-t10 --quick (versioned commits + time travel) =="
# A writable server takes a committed update sequence; every commit's
# ?asOf= answer is checked against a fresh store replayed to that
# commit and queried at head (row multisets, counts, and the replayed
# chain's head id must all match), a conditional request against an
# unchanged commit id must 304 with zero store reads, and a ranked
# catalogue search must see a committed searchText doc immediately —
# any violation panics the harness (non-zero exit).
./target/release/harness e-t10 --quick
test -s BENCH_PR10.json
grep -q '"asof_identical": true' BENCH_PR10.json
grep -q '"replayed_head_ids_match": true' BENCH_PR10.json
grep -q '"store_reads_during_304": 0' BENCH_PR10.json
grep -q '"catalogue_fresh_after_write": true' BENCH_PR10.json

echo "verify.sh: all green"
