#!/usr/bin/env bash
# Tier-1 verification: build and test the whole workspace with zero
# network access, then smoke-run the distributed-training (E4),
# classification (E5) and kernel-throughput (E-k0) experiments.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: offline release build =="
cargo build --release --offline

echo "== tier-1: offline test suite =="
cargo test -q --offline

echo "== smoke: harness e4 e5 kernels (quick scale) =="
./target/release/harness e4 e5 kernels

echo "verify.sh: all green"
