//! Property-based tests over cross-crate invariants: WKT round trips,
//! R-tree equivalence with brute force, raster-codec round trips, the
//! SPARQL engine's indexed/scan agreement, and dataset splits.
//!
//! Each property runs over 64 deterministic random cases drawn from a
//! seeded [`extremeearth::util::Rng`] (no external property-test
//! framework, so the workspace builds offline). Failures print the case
//! index so a failing draw can be replayed exactly.

use extremeearth::geo::{algorithms, wkt, Envelope, Geometry, Point, Polygon, RTree};
use extremeearth::raster::raster::GeoTransform;
use extremeearth::raster::{codec, Raster};
use extremeearth::rdf::exec::query;
use extremeearth::rdf::store::IndexMode;
use extremeearth::rdf::term::Term;
use extremeearth::rdf::TripleStore;
use extremeearth::util::Rng;

const CASES: usize = 64;

fn random_point(rng: &mut Rng) -> Point {
    Point::new(rng.range_f64(-1000.0, 1000.0), rng.range_f64(-1000.0, 1000.0))
}

fn random_rect_polygon(rng: &mut Rng) -> Polygon {
    let x = rng.range_f64(-500.0, 500.0);
    let y = rng.range_f64(-500.0, 500.0);
    let w = rng.range_f64(0.1, 50.0);
    let h = rng.range_f64(0.1, 50.0);
    Polygon::rectangle(x, y, x + w, y + h)
}

#[test]
fn wkt_roundtrips_points() {
    let mut rng = Rng::seed_from(0xCC01);
    for case in 0..CASES {
        let g: Geometry = random_point(&mut rng).into();
        let text = wkt::to_wkt(&g);
        let back = wkt::parse_wkt(&text).expect("roundtrip parse");
        assert_eq!(back, g, "case {case}: {text}");
    }
}

#[test]
fn wkt_roundtrips_polygons() {
    let mut rng = Rng::seed_from(0xCC02);
    for case in 0..CASES {
        let g: Geometry = random_rect_polygon(&mut rng).into();
        let text = wkt::to_wkt(&g);
        let back = wkt::parse_wkt(&text).expect("roundtrip parse");
        assert_eq!(back, g, "case {case}: {text}");
    }
}

#[test]
fn rectangle_intersection_matches_envelope_logic() {
    let mut rng = Rng::seed_from(0xCC03);
    for case in 0..CASES {
        // For axis-aligned rectangles, exact intersection == envelope
        // intersection; the geometry kernels must agree.
        let a = random_rect_polygon(&mut rng);
        let b = random_rect_polygon(&mut rng);
        let ga: Geometry = a.clone().into();
        let gb: Geometry = b.clone().into();
        let exact = algorithms::intersects(&ga, &gb);
        let bbox = a.envelope().intersects(&b.envelope());
        assert_eq!(exact, bbox, "case {case}");
    }
}

#[test]
fn rtree_matches_brute_force() {
    let mut rng = Rng::seed_from(0xCC04);
    for case in 0..CASES {
        let n = rng.range(1, 200);
        let envs: Vec<(Envelope, usize)> = (0..n)
            .map(|i| {
                let x = rng.range_f64(-500.0, 500.0);
                let y = rng.range_f64(-500.0, 500.0);
                let w = rng.range_f64(0.1, 20.0);
                let h = rng.range_f64(0.1, 20.0);
                (Envelope::new(x, y, x + w, y + h), i)
            })
            .collect();
        let tree = RTree::bulk_load(envs.clone());
        let qx = rng.range_f64(-600.0, 600.0);
        let qy = rng.range_f64(-600.0, 600.0);
        let qw = rng.range_f64(1.0, 300.0);
        let qh = rng.range_f64(1.0, 300.0);
        let q = Envelope::new(qx, qy, qx + qw, qy + qh);
        let mut got: Vec<usize> = tree.search(&q).into_iter().copied().collect();
        got.sort_unstable();
        let mut expect: Vec<usize> = envs
            .iter()
            .filter(|(e, _)| e.intersects(&q))
            .map(|(_, i)| *i)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect, "case {case}");
    }
}

#[test]
fn raster_codec_roundtrips() {
    let mut rng = Rng::seed_from(0xCC05);
    for case in 0..CASES {
        let cols = rng.range(1, 40);
        let rows = rng.range(1, 40);
        let mut pix = Rng::seed_from(rng.next_u64());
        let t = GeoTransform::new(0.0, rows as f64, 1.0);
        let r: Raster<f32> = Raster::from_fn(cols, rows, t, |_, _| pix.f32());
        let back: Raster<f32> = codec::decode(&codec::encode(&r)).expect("decode");
        assert_eq!(back, r, "case {case}");
        // And a label raster (exercises RLE).
        let l: Raster<u8> = Raster::from_fn(cols, rows, t, |c, _| (c / 7) as u8);
        let back: Raster<u8> = codec::decode(&codec::encode(&l)).expect("decode");
        assert_eq!(back, l, "case {case}");
    }
}

#[test]
fn sparql_indexed_and_scan_agree() {
    let mut rng = Rng::seed_from(0xCC06);
    for case in 0..CASES {
        let n = rng.range(1, 120);
        let triples: Vec<(u8, u8, u8)> = (0..n)
            .map(|_| {
                (
                    rng.range(0, 12) as u8,
                    rng.range(0, 4) as u8,
                    rng.range(0, 12) as u8,
                )
            })
            .collect();
        let filter_min = rng.range(0, 12) as u8;
        let build = |mode: IndexMode| {
            let mut st = TripleStore::new(mode);
            for &(s, p, o) in &triples {
                st.insert(
                    &Term::iri(format!("http://e/s{s}")),
                    &Term::iri(format!("http://e/p{p}")),
                    &Term::integer(o as i64),
                );
            }
            st
        };
        let q = format!(
            "PREFIX e: <http://e/> SELECT ?s ?o WHERE {{ ?s e:p1 ?o . FILTER(?o >= {filter_min}) }} ORDER BY ?o"
        );
        let normalize = |st: &TripleStore| {
            let sol = query(st, &q).expect("query");
            let mut rows: Vec<String> = sol.rows.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            rows
        };
        assert_eq!(
            normalize(&build(IndexMode::Full)),
            normalize(&build(IndexMode::Scan)),
            "case {case}"
        );
    }
}

#[test]
fn stratified_split_partitions_everything() {
    let mut rng = Rng::seed_from(0xCC07);
    for case in 0..CASES {
        let n = rng.range(20, 300);
        let frac = rng.range_f64(0.1, 0.9);
        let seed = rng.next_u64();
        let mut lab = Rng::seed_from(seed);
        let labels: Vec<usize> = (0..n).map(|_| lab.range(0, 4)).collect();
        let x = extremeearth::tensor::Tensor::full(&[n, 2], 1.0);
        let data = extremeearth::dl::Dataset::new(x, labels).expect("dataset");
        let (train, test) = data.split(frac, seed).expect("split");
        assert_eq!(train.len() + test.len(), n, "case {case}");
        // Per-class counts preserved.
        for class in 0..4 {
            let total = data.labels.iter().filter(|&&y| y == class).count();
            let tr = train.labels.iter().filter(|&&y| y == class).count();
            let te = test.labels.iter().filter(|&&y| y == class).count();
            assert_eq!(tr + te, total, "case {case} class {class}");
        }
    }
}
