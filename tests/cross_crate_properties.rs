//! Property-based tests over cross-crate invariants: WKT round trips,
//! R-tree equivalence with brute force, raster-codec round trips, the
//! SPARQL engine's indexed/scan agreement, and dataset splits.

use extremeearth::geo::{algorithms, wkt, Envelope, Geometry, Point, Polygon, RTree};
use extremeearth::raster::raster::GeoTransform;
use extremeearth::raster::{codec, Raster};
use extremeearth::rdf::exec::query;
use extremeearth::rdf::store::IndexMode;
use extremeearth::rdf::term::Term;
use extremeearth::rdf::TripleStore;
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1000.0f64..1000.0, -1000.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect_polygon() -> impl Strategy<Value = Polygon> {
    (
        -500.0f64..500.0,
        -500.0f64..500.0,
        0.1f64..50.0,
        0.1f64..50.0,
    )
        .prop_map(|(x, y, w, h)| Polygon::rectangle(x, y, x + w, y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wkt_roundtrips_points(p in arb_point()) {
        let g: Geometry = p.into();
        let text = wkt::to_wkt(&g);
        let back = wkt::parse_wkt(&text).expect("roundtrip parse");
        prop_assert_eq!(back, g);
    }

    #[test]
    fn wkt_roundtrips_polygons(poly in arb_rect_polygon()) {
        let g: Geometry = poly.into();
        let text = wkt::to_wkt(&g);
        let back = wkt::parse_wkt(&text).expect("roundtrip parse");
        prop_assert_eq!(back, g);
    }

    #[test]
    fn rectangle_intersection_matches_envelope_logic(
        a in arb_rect_polygon(),
        b in arb_rect_polygon(),
    ) {
        // For axis-aligned rectangles, exact intersection == envelope
        // intersection; the geometry kernels must agree.
        let ga: Geometry = a.clone().into();
        let gb: Geometry = b.clone().into();
        let exact = algorithms::intersects(&ga, &gb);
        let bbox = a.envelope().intersects(&b.envelope());
        prop_assert_eq!(exact, bbox);
    }

    #[test]
    fn rtree_matches_brute_force(
        items in prop::collection::vec(
            (-500.0f64..500.0, -500.0f64..500.0, 0.1f64..20.0, 0.1f64..20.0),
            1..200,
        ),
        query_box in (-600.0f64..600.0, -600.0f64..600.0, 1.0f64..300.0, 1.0f64..300.0),
    ) {
        let envs: Vec<(Envelope, usize)> = items
            .iter()
            .enumerate()
            .map(|(i, &(x, y, w, h))| (Envelope::new(x, y, x + w, y + h), i))
            .collect();
        let tree = RTree::bulk_load(envs.clone());
        let q = Envelope::new(query_box.0, query_box.1, query_box.0 + query_box.2, query_box.1 + query_box.3);
        let mut got: Vec<usize> = tree.search(&q).into_iter().copied().collect();
        got.sort_unstable();
        let mut expect: Vec<usize> = envs
            .iter()
            .filter(|(e, _)| e.intersects(&q))
            .map(|(_, i)| *i)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn raster_codec_roundtrips(
        cols in 1usize..40,
        rows in 1usize..40,
        seed in any::<u32>(),
    ) {
        let mut rng = extremeearth::util::Rng::seed_from(seed as u64);
        let t = GeoTransform::new(0.0, rows as f64, 1.0);
        let r: Raster<f32> = Raster::from_fn(cols, rows, t, |_, _| rng.f32());
        let back: Raster<f32> = codec::decode(&codec::encode(&r)).expect("decode");
        prop_assert_eq!(back, r);
        // And a label raster (exercises RLE).
        let l: Raster<u8> = Raster::from_fn(cols, rows, t, |c, _| (c / 7) as u8);
        let back: Raster<u8> = codec::decode(&codec::encode(&l)).expect("decode");
        prop_assert_eq!(back, l);
    }

    #[test]
    fn sparql_indexed_and_scan_agree(
        triples in prop::collection::vec((0u8..12, 0u8..4, 0u8..12), 1..120),
        filter_min in 0u8..12,
    ) {
        let build = |mode: IndexMode| {
            let mut st = TripleStore::new(mode);
            for &(s, p, o) in &triples {
                st.insert(
                    &Term::iri(format!("http://e/s{s}")),
                    &Term::iri(format!("http://e/p{p}")),
                    &Term::integer(o as i64),
                );
            }
            st
        };
        let q = format!(
            "PREFIX e: <http://e/> SELECT ?s ?o WHERE {{ ?s e:p1 ?o . FILTER(?o >= {filter_min}) }} ORDER BY ?o"
        );
        let normalize = |st: &TripleStore| {
            let sol = query(st, &q).expect("query");
            let mut rows: Vec<String> = sol.rows.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            rows
        };
        prop_assert_eq!(normalize(&build(IndexMode::Full)), normalize(&build(IndexMode::Scan)));
    }

    #[test]
    fn stratified_split_partitions_everything(
        n in 20usize..300,
        frac in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let mut rng = extremeearth::util::Rng::seed_from(seed);
        let labels: Vec<usize> = (0..n).map(|_| rng.range(0, 4)).collect();
        let x = extremeearth::tensor::Tensor::full(&[n, 2], 1.0);
        let data = extremeearth::dl::Dataset::new(x, labels).expect("dataset");
        let (train, test) = data.split(frac, seed).expect("split");
        prop_assert_eq!(train.len() + test.len(), n);
        // Per-class counts preserved.
        for class in 0..4 {
            let total = data.labels.iter().filter(|&&y| y == class).count();
            let tr = train.labels.iter().filter(|&&y| y == class).count();
            let te = test.labels.iter().filter(|&&y| y == class).count();
            prop_assert_eq!(tr + te, total);
        }
    }
}
