//! End-to-end integration of the Food Security pipeline (A1): synthetic
//! world → optical season → temporal classification → boundaries →
//! PROMET-lite → linked data, crossing six crates.

use extremeearth::datasets::landscape::LandscapeConfig;
use extremeearth::datasets::optics::{simulate_season, OpticsConfig};
use extremeearth::datasets::Landscape;
use extremeearth::food::boundaries::{extract_fields, parcel_recovery};
use extremeearth::food::cropmap::classify_landscape;
use extremeearth::food::linked::{parcel_features, publish, FARM};
use extremeearth::food::promet::{run as promet, PrometConfig};
use extremeearth::util::timeline::Date;

fn world() -> Landscape {
    Landscape::generate(LandscapeConfig {
        size: 48,
        parcels_per_side: 5,
        seed: 20170101,
        ..LandscapeConfig::default()
    })
    .expect("world")
}

#[test]
fn full_pipeline_produces_consistent_artifacts() {
    let world = world();
    let dates: Vec<Date> = [60u16, 105, 150, 195, 240, 285]
        .iter()
        .map(|&d| Date::from_ordinal(2017, d).expect("valid"))
        .collect();
    let stack = simulate_season(
        &world,
        &dates,
        OpticsConfig {
            cloud_fraction: 0.0,
            noise_std: 0.01,
        },
        7,
    )
    .expect("season");

    // Classification on real model output (not truth).
    let (crop_map, cm) = classify_landscape(&world, &stack, 42).expect("classify");
    assert!(cm.accuracy() > 0.7, "accuracy {}", cm.accuracy());

    // Boundaries from the predicted map recover most parcels.
    let (labels, fields) = extract_fields(&crop_map, 6);
    let recovery = parcel_recovery(&world, &labels, &fields, 0.6);
    assert!(recovery > 0.6, "recovery {recovery}");

    // Water balance driven by the *predicted* crop map.
    let output = promet(&world, &crop_map, PrometConfig::default()).expect("promet");
    assert_eq!(output.daily_basin_water.len(), 365);
    assert!(output.runoff_mm > 0.0);

    // Linked-data publication is complete and queryable.
    let fc = parcel_features(&world, &crop_map, &output).expect("features");
    assert_eq!(fc.len(), world.parcels.len());
    let store = publish(&fc).expect("publish");
    let sol = extremeearth::rdf::exec::query(
        &store,
        &format!("PREFIX farm: <{FARM}> SELECT (COUNT(?p) AS ?n) WHERE {{ ?p a farm:Parcel }}"),
    )
    .expect("query");
    assert_eq!(
        sol.scalar(),
        Some(&extremeearth::rdf::term::Term::integer(
            world.parcels.len() as i64
        ))
    );
}

#[test]
fn cloudy_season_still_classifies_with_median_compositing_features() {
    // Clouds degrade but do not break the pipeline (robustness check).
    let world = world();
    let dates: Vec<Date> = [60u16, 105, 150, 195, 240, 285]
        .iter()
        .map(|&d| Date::from_ordinal(2017, d).expect("valid"))
        .collect();
    let cloudy = simulate_season(
        &world,
        &dates,
        OpticsConfig {
            cloud_fraction: 0.25,
            noise_std: 0.015,
        },
        11,
    )
    .expect("season");
    let (_, cm) = classify_landscape(&world, &cloudy, 43).expect("classify");
    assert!(
        cm.accuracy() > 0.45,
        "cloudy-season accuracy collapsed: {}",
        cm.accuracy()
    );
}

#[test]
fn crop_specific_model_differentiates_demand_by_crop() {
    let world = world();
    let specific = promet(&world, &world.truth, PrometConfig::default()).expect("promet");
    let constant = promet(
        &world,
        &world.truth,
        PrometConfig {
            crop_specific_kc: false,
            ..PrometConfig::default()
        },
    )
    .expect("promet const");
    let spread = |o: &extremeearth::food::promet::PrometOutput| {
        let d = extremeearth::food::promet::demand_by_crop(&world, o);
        let vals: Vec<f64> = d.iter().map(|(_, v)| *v).collect();
        vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - vals.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    assert!(spread(&specific) > spread(&constant));
}
