//! End-to-end integration of the Polar pipeline (A2): ice world → SAR →
//! classification → 1 km products → icebergs → semantic catalogue →
//! PCDSS, crossing five crates.

use extremeearth::catalogue::SemanticCatalogue;
use extremeearth::datasets::seaice::{IceWorld, IceWorldConfig};
use extremeearth::polar::icebergs::{detect, score_detections, DetectorConfig, Tracker};
use extremeearth::polar::icemap::{
    mae, products_from_map, stage_confusion, truth_masks, IceMapper,
};
use extremeearth::polar::linked::{publish_ice_extents, publish_tracks};
use extremeearth::polar::pcdss::{decode_bundle, encode_bundle};
use extremeearth::util::timeline::Date;

fn world() -> IceWorld {
    IceWorld::generate(IceWorldConfig {
        size: 80,
        days: 6,
        icebergs: 5,
        ..IceWorldConfig::default()
    })
    .expect("ice world")
}

#[test]
fn classification_products_and_delivery_cohere() {
    let world = world();
    let day0 = Date::new(2017, 2, 10).expect("valid");
    let train: Vec<_> = (0..3)
        .map(|d| {
            (
                world
                    .simulate_sar(d, day0.plus_days(d as u32), 100 + d as u64)
                    .expect("sar"),
                world.truth(d),
            )
        })
        .collect();
    let refs: Vec<(&extremeearth::raster::Scene, &extremeearth::raster::Raster<u8>)> =
        train.iter().map(|(s, t)| (s, t)).collect();
    let mut mapper = IceMapper::train(&refs, 2000, 25, 7).expect("train");
    let scene = world.simulate_sar(5, day0.plus_days(5), 999).expect("sar");
    let predicted = mapper.predict_map(&scene).expect("predict");
    let (truth, leads, ridges) = truth_masks(&world, 5);
    let cm = stage_confusion(&predicted, &truth);
    assert!(cm.accuracy() > 0.5, "stage accuracy {}", cm.accuracy());

    // 1 km products agree with truth products closely.
    let p_pred = products_from_map(&predicted, &leads, &ridges, 20);
    let p_true = products_from_map(&truth, &leads, &ridges, 20);
    assert!(mae(&p_pred.concentration, &p_true.concentration) < 0.15);

    // PCDSS roundtrip preserves the concentration within quantisation.
    let bundle = encode_bundle(&p_pred, 1_000_000).expect("encode");
    let (conc, stage, _) = decode_bundle(&bundle).expect("decode");
    assert_eq!(conc.shape(), p_pred.concentration.shape());
    assert_eq!(stage.shape(), p_pred.stage.shape());
}

#[test]
fn detection_tracking_catalogue_loop() {
    let world = world();
    let day0 = Date::new(2017, 2, 10).expect("valid");
    let mut tracker = Tracker::new(6.0);
    let mut total_tp = 0usize;
    let mut total_truth = 0usize;
    for d in 0..world.config.days {
        let scene = world
            .simulate_sar(d, day0.plus_days(d as u32), 5 + d as u64)
            .expect("sar");
        let detections = detect(&scene, DetectorConfig::default()).expect("detect");
        let truth_positions = world.iceberg_positions(d);
        let (tp, _, _) = score_detections(&detections, &truth_positions, 3.0);
        total_tp += tp;
        total_truth += truth_positions.len();
        tracker.step(d, &detections);
    }
    let detection_recall = total_tp as f64 / total_truth as f64;
    assert!(detection_recall > 0.6, "detection recall {detection_recall}");

    let confirmed = tracker.confirmed(3);
    assert!(!confirmed.is_empty());

    let mut catalogue = SemanticCatalogue::new();
    publish_tracks(&mut catalogue, &confirmed, world.transform(), day0).expect("tracks");
    publish_ice_extents(&mut catalogue, &world, "Barrier", day0).expect("extents");
    catalogue.finish_ingest();
    let (count, when) = catalogue.iceberg_question("Barrier", 2017).expect("question");
    assert!(when.year() == 2017);
    assert!(count > 0, "the pipeline's knowledge answers the marquee query");
    // And 2016 has no observations.
    assert!(catalogue.iceberg_question("Barrier", 2016).is_err());
}
