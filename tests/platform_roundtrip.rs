//! Platform-level integration: archive round trips through HopsFS, the
//! distributed-training equivalence under the platform's cluster, and
//! federation over the catalogue's knowledge store.

use extremeearth::datasets::landscape::LandscapeConfig;
use extremeearth::datasets::optics::{simulate_s2, OpticsConfig};
use extremeearth::datasets::Landscape;
use extremeearth::federation::{federated_query, Endpoint, FederationCatalog, Mode};
use extremeearth::platform::{Platform, PlatformConfig};
use extremeearth::raster::{codec, Band, Raster};
use extremeearth::util::timeline::Date;

fn world() -> Landscape {
    Landscape::generate(LandscapeConfig {
        size: 32,
        parcels_per_side: 4,
        ..LandscapeConfig::default()
    })
    .expect("world")
}

#[test]
fn archived_bands_roundtrip_bit_exact() {
    let mut platform = Platform::new(PlatformConfig::default()).expect("platform");
    let w = world();
    let scene = simulate_s2(
        &w,
        Date::new(2017, 6, 15).expect("valid"),
        OpticsConfig::default(),
        3,
    )
    .expect("scene");
    let stored = platform.archive_scene("roundtrip", &scene).expect("archive");
    // Read one band back through the filesystem and decode it.
    let path = format!("{}/B08.eert", stored.path);
    let bytes = platform.fs().read(&path).expect("read");
    let decoded: Raster<f32> = codec::decode(&bytes).expect("decode");
    assert_eq!(&decoded, scene.band(Band::B08).expect("band present"));
}

#[test]
fn platform_archive_is_listable_and_metered() {
    let mut platform = Platform::new(PlatformConfig::default()).expect("platform");
    let w = world();
    for i in 0..3 {
        let scene = simulate_s2(
            &w,
            Date::from_ordinal(2017, 100 + i * 40).expect("valid"),
            OpticsConfig::default(),
            i as u64,
        )
        .expect("scene");
        platform.archive_scene("meter", &scene).expect("archive");
    }
    assert_eq!(platform.list_scenes("meter").expect("list").len(), 3);
    // The metadata store did real work (fast-path commits dominate).
    let (fast, slow, _) = platform.fs().store().stats();
    assert!(fast > 30, "fast-path commits: {fast}");
    assert!(fast > slow, "archive writes are partition-local");
}

#[test]
fn knowledge_store_federates_with_external_sources() {
    // Extract knowledge on the platform, then expose the catalogue's
    // store as one endpoint of a federation beside an external source.
    let mut platform = Platform::new(PlatformConfig::default()).expect("platform");
    let w = world();
    let scene = simulate_s2(
        &w,
        Date::new(2017, 6, 15).expect("valid"),
        OpticsConfig::default(),
        9,
    )
    .expect("scene");
    platform
        .extract_knowledge("fed", &w, &[scene], &w.truth)
        .expect("extract");

    // External source: market prices per crop.
    let mut market = extremeearth::rdf::TripleStore::new(extremeearth::rdf::IndexMode::Full);
    for (crop, price) in [("Wheat", 182.0), ("Maize", 160.5), ("Rapeseed", 395.0), ("SugarBeet", 31.0), ("Grassland", 12.0)] {
        market.insert(
            &extremeearth::rdf::term::Term::string(crop),
            &extremeearth::rdf::term::Term::iri("http://market.example/pricePerTonne"),
            &extremeearth::rdf::term::Term::double(price),
        );
    }
    // Move the knowledge store's triples into an endpoint (federation
    // owns its endpoints; the platform keeps its catalogue).
    let mut knowledge = extremeearth::rdf::TripleStore::new(extremeearth::rdf::IndexMode::Full);
    for (s, p, o) in platform.catalogue().store().triples() {
        knowledge.insert(s, p, o);
    }
    knowledge.build_spatial_index();
    let endpoints = vec![
        Endpoint::new("knowledge", knowledge),
        Endpoint::new("market", market),
    ];
    let catalog = FederationCatalog::build(&endpoints);
    let q = "PREFIX farm: <http://extremeearth.eu/ont/farm#> \
             PREFIX m: <http://market.example/> \
             SELECT ?p ?c ?price WHERE { \
               ?p farm:cropType ?c . ?c m:pricePerTonne ?price }";
    let naive = federated_query(&endpoints, &catalog, q, Mode::Naive).expect("naive");
    let opt = federated_query(&endpoints, &catalog, q, Mode::Optimized).expect("optimized");
    assert!(!opt.rows.is_empty(), "cross-source join produced rows");
    assert_eq!(naive.rows.len(), opt.rows.len(), "plans agree");
    assert!(opt.total_requests <= naive.total_requests);
}
